/**
 * @file
 * Tests for the collective communication layer: numerical
 * correctness of allreduce/broadcast/reduce/allgather, timing
 * properties (bidirectional rings), and the analytic estimate.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "collective/communicator.hh"
#include "fabric/topology.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::coll;
using namespace coarse::fabric;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

/** Fully connected clique of @p n GPUs with flat links. */
struct Clique
{
    explicit Clique(std::size_t n, double gb = 10.0)
        : topo(sim)
    {
        for (std::size_t i = 0; i < n; ++i) {
            ranks.push_back(
                topo.addNode(NodeKind::Gpu, "g" + std::to_string(i)));
        }
        LinkParams params;
        params.bandwidth = BandwidthCurve::flat(gbps(gb));
        params.latency = coarse::sim::fromNanoseconds(500);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j)
                topo.addLink(ranks[i], ranks[j], params);
        }
        comm = std::make_unique<Communicator>(topo, ranks);
    }

    Simulation sim;
    Topology topo;
    std::vector<NodeId> ranks;
    std::unique_ptr<Communicator> comm;
};

std::vector<std::vector<float>>
makeBuffers(std::size_t p, std::size_t n)
{
    std::vector<std::vector<float>> buffers(p);
    for (std::size_t i = 0; i < p; ++i) {
        buffers[i].resize(n);
        for (std::size_t e = 0; e < n; ++e)
            buffers[i][e] =
                static_cast<float>(i + 1) + 0.001f * (e % 100);
    }
    return buffers;
}

std::vector<float>
expectedSum(const std::vector<std::vector<float>> &buffers)
{
    std::vector<float> sum(buffers.front().size(), 0.0f);
    for (const auto &b : buffers) {
        for (std::size_t e = 0; e < sum.size(); ++e)
            sum[e] += b[e];
    }
    return sum;
}

/** Sweep (ranks, elements, rings): allreduce must produce sums. */
struct AllReduceCase
{
    std::size_t ranks;
    std::size_t elements;
    std::size_t rings;
};

class AllReduceSweep : public ::testing::TestWithParam<AllReduceCase>
{
};

TEST_P(AllReduceSweep, ProducesExactSums)
{
    const auto [p, n, rings] = GetParam();
    Clique clique(p);
    auto buffers = makeBuffers(p, n);
    const auto expected = expectedSum(buffers);

    std::vector<std::span<float>> spans;
    for (auto &b : buffers)
        spans.emplace_back(b);

    RingOptions options;
    options.rings = rings;
    bool done = false;
    clique.comm->allReduce(spans, options, [&] { done = true; });
    clique.sim.run();
    ASSERT_TRUE(done);

    for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t e = 0; e < n; ++e) {
            ASSERT_NEAR(buffers[i][e], expected[e],
                        1e-4 * std::abs(expected[e]))
                << "rank " << i << " elem " << e;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllReduceSweep,
    ::testing::Values(AllReduceCase{2, 16, 1}, AllReduceCase{2, 1000, 2},
                      AllReduceCase{3, 977, 1}, AllReduceCase{4, 4096, 2},
                      AllReduceCase{4, 17, 4}, AllReduceCase{5, 1031, 2},
                      AllReduceCase{8, 8192, 2},
                      AllReduceCase{8, 8192, 4}));

TEST(Communicator, SingleRankIsImmediate)
{
    Clique clique(1);
    std::vector<float> data(64, 2.0f);
    std::vector<std::span<float>> spans{std::span<float>(data)};
    bool done = false;
    clique.comm->allReduce(spans, RingOptions{}, [&] { done = true; });
    clique.sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(data[0], 2.0f);
}

TEST(Communicator, RejectsDuplicateOrMismatched)
{
    Clique clique(3);
    EXPECT_THROW(Communicator(clique.topo,
                              {clique.ranks[0], clique.ranks[0]}),
                 FatalError);
    std::vector<float> a(8), b(9);
    std::vector<std::span<float>> bad{std::span<float>(a),
                                      std::span<float>(b)};
    EXPECT_THROW(clique.comm->allReduce(bad, RingOptions{}, [] {}),
                 FatalError);
}

TEST(Communicator, BroadcastCopiesRootData)
{
    Clique clique(5);
    auto buffers = makeBuffers(5, 333);
    const auto rootData = buffers[2];
    std::vector<std::span<float>> spans;
    for (auto &b : buffers)
        spans.emplace_back(b);
    bool done = false;
    clique.comm->broadcast(2, spans, RingOptions{}, [&] { done = true; });
    clique.sim.run();
    ASSERT_TRUE(done);
    for (const auto &b : buffers)
        EXPECT_EQ(b, rootData);
}

TEST(Communicator, ReduceSumsIntoRoot)
{
    Clique clique(4);
    auto buffers = makeBuffers(4, 100);
    const auto expected = expectedSum(buffers);
    std::vector<std::span<float>> spans;
    for (auto &b : buffers)
        spans.emplace_back(b);
    bool done = false;
    clique.comm->reduce(1, spans, RingOptions{}, [&] { done = true; });
    clique.sim.run();
    ASSERT_TRUE(done);
    for (std::size_t e = 0; e < expected.size(); ++e)
        EXPECT_NEAR(buffers[1][e], expected[e], 1e-4);
}

TEST(Communicator, AllGatherConcatenatesSegments)
{
    Clique clique(3);
    std::vector<std::vector<float>> segments{
        {1.0f, 2.0f}, {3.0f}, {4.0f, 5.0f, 6.0f}};
    std::vector<std::vector<float>> gathered(3,
                                             std::vector<float>(6));
    std::vector<std::span<const float>> segSpans;
    for (auto &s : segments)
        segSpans.emplace_back(s);
    std::vector<std::span<float>> outSpans;
    for (auto &g : gathered)
        outSpans.emplace_back(g);
    bool done = false;
    clique.comm->allGather(segSpans, outSpans, RingOptions{},
                           [&] { done = true; });
    clique.sim.run();
    ASSERT_TRUE(done);
    const std::vector<float> expected{1.0f, 2.0f, 3.0f,
                                      4.0f, 5.0f, 6.0f};
    for (const auto &g : gathered)
        EXPECT_EQ(g, expected);
}

TEST(Communicator, BarrierCompletes)
{
    Clique clique(6);
    bool done = false;
    clique.comm->barrier(RingOptions{}, [&] { done = true; });
    clique.sim.run();
    EXPECT_TRUE(done);
}

TEST(Communicator, TimedMatchesFunctionalTiming)
{
    const std::size_t p = 4;
    const std::size_t n = 1 << 20; // 4 MiB of floats

    double functionalTime;
    {
        Clique clique(p);
        auto buffers = makeBuffers(p, n);
        std::vector<std::span<float>> spans;
        for (auto &b : buffers)
            spans.emplace_back(b);
        RingOptions options;
        options.reduceBytesPerSec = 0; // isolate fabric time
        clique.comm->allReduce(spans, options, [] {});
        clique.sim.run();
        functionalTime = coarse::sim::toSeconds(clique.sim.now());
    }
    double timedTime;
    {
        Clique clique(p);
        RingOptions options;
        options.reduceBytesPerSec = 0;
        clique.comm->allReduceTimed(n * sizeof(float), options, [] {});
        clique.sim.run();
        timedTime = coarse::sim::toSeconds(clique.sim.now());
    }
    EXPECT_NEAR(timedTime, functionalTime, functionalTime * 0.02);
}

TEST(Communicator, AlternatingRingsBeatSameDirection)
{
    const std::uint64_t bytes = 64 << 20;
    auto timeFor = [&](bool alternate) {
        Clique clique(4);
        RingOptions options;
        options.rings = 2;
        options.alternateDirections = alternate;
        options.reduceBytesPerSec = 0;
        clique.comm->allReduceTimed(bytes, options, [] {});
        clique.sim.run();
        return coarse::sim::toSeconds(clique.sim.now());
    };
    // Counter-rotating rings use both directions of every link and
    // should be close to 2x faster.
    EXPECT_LT(timeFor(true), timeFor(false) * 0.65);
}

TEST(Communicator, RingTimeMatchesClassicFormula)
{
    const std::size_t p = 4;
    const std::uint64_t bytes = 64 << 20;
    Clique clique(p);
    RingOptions options;
    options.rings = 1;
    options.reduceBytesPerSec = 0;
    clique.comm->allReduceTimed(bytes, options, [] {});
    clique.sim.run();
    const double measured = coarse::sim::toSeconds(clique.sim.now());
    // 2(p-1)/p * n / B plus latency terms.
    const double formula =
        2.0 * double(p - 1) / double(p) * double(bytes) / gbps(10.0);
    EXPECT_NEAR(measured, formula, formula * 0.10);
}

TEST(Communicator, EstimateTracksSimulation)
{
    const std::size_t p = 4;
    const std::uint64_t bytes = 32 << 20;
    Clique clique(p);
    RingOptions options;
    options.rings = 2;
    const double estimate =
        clique.comm->estimateAllReduceSeconds(bytes, options);
    clique.comm->allReduceTimed(bytes, options, [] {});
    clique.sim.run();
    const double measured = coarse::sim::toSeconds(clique.sim.now());
    EXPECT_NEAR(estimate, measured, measured * 0.35);
}

TEST(Communicator, MoreRanksMoveMoreBytes)
{
    auto bytesFor = [](std::size_t p) {
        Clique clique(p);
        RingOptions options;
        clique.comm->allReduceTimed(8 << 20, options, [] {});
        clique.sim.run();
        return clique.comm->bytesMoved().value();
    };
    EXPECT_GT(bytesFor(8), bytesFor(4));
    EXPECT_GT(bytesFor(4), bytesFor(2));
}

} // namespace
